//! `tc-driver`: the end-to-end pipeline.
//!
//! One call to [`run_source`] takes Mini-Haskell source text through
//! every stage of the dictionary-passing compilation scheme of
//! Peterson & Jones:
//!
//! 1. **lex** / **parse** ([`tc_syntax`]) — error-recovering; junk
//!    input yields diagnostics plus a partial AST, never a panic;
//! 2. **class environment** ([`tc_classes`]) — class and instance
//!    declarations are checked (duplicate methods, overlapping
//!    instances, superclass cycles) and method slots laid out;
//! 3. **elaboration** ([`tc_core`]) — Hindley-Milner inference with
//!    class contexts, inserting dictionary placeholders, then the
//!    conversion pass that spells each placeholder out as a parameter
//!    reference, superclass projection, or instance application;
//! 4. **lint** ([`tc_lint`], via [`lint_source`] only) — the
//!    whole-program static-analysis pass over the surface AST, class
//!    environment, and converted core, with per-rule allow/warn/deny
//!    levels ([`Options::lint_levels`]);
//! 5. **evaluation** ([`tc_eval`]) — the lazy core interpreter runs
//!    `main` under an explicit [`Budget`] (fuel, nesting depth,
//!    allocation cap), so even adversarial programs terminate with a
//!    structured [`EvalError`].
//!
//! A prelude (classes `Eq`, `Ord`, `Num`; instances for `Int`, `Bool`
//! and `List`; `member` and the usual list functions) is spliced in
//! front of the user program by default. The driver concatenates the
//! prelude *source* with the user source and compiles the combined
//! text, so every diagnostic span points into one coherent buffer —
//! [`Check::full_source`] — and [`Check::render_diagnostics`] shows
//! correct line/column information for both halves.
//!
//! Every stage accumulates into one [`Diagnostics`] collection; no
//! stage aborts the pipeline, so a single call reports parse errors,
//! type errors, and unresolved constraints together.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(not(test), deny(clippy::panic))]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod resilience;

use resilience::{FaultOutcome, FaultSite, Faults};
use tc_classes::{build_class_env, ClassEnv, ReduceBudget};
use tc_coherence::{CoherenceInput, LawInput, LawOptions};
use tc_core::{elaborate_with, ElabOptions, Elaboration};
use tc_coreir::ShareStats;
use tc_eval::{Budget, EvalError, EvalOptions};
use tc_lint::LintInput;
use tc_syntax::{Diagnostics, ParseOptions, Span, Stage as DiagStage};
use tc_trace::{
    CancelToken, CounterId, EventScope, HistogramId, JsonWriter, MetricsRegistry, SpanEvent,
    Stage as TraceStage, Telemetry,
};
use tc_types::VarGen;

pub use resilience::FaultPlan;
pub use tc_classes::{ResolveStats, ResolveTraceLog};
pub use tc_coherence::{CoherenceConfig, Rule as CoherenceRule};
pub use tc_coreir::ShareStats as DictShareStats;
pub use tc_eval::{BudgetSnapshot, EvalProfile, EvalStats};
pub use tc_lint::{LintConfig, Rule as LintRule};
pub use tc_syntax::LintLevel;

/// Diagnostic code for a compilation cut short by its deadline (the
/// resolver's in-flight flavor of the same event is `E0423`).
pub const CANCELLED_CODE: &str = "E0430";

/// The prelude source spliced in front of user programs.
pub const PRELUDE: &str = include_str!("prelude.mh");

/// Pipeline configuration: which prelude to use and how much of each
/// resource the stages may spend.
#[derive(Debug, Clone)]
pub struct Options {
    /// Splice the standard prelude in front of the user program.
    pub use_prelude: bool,
    /// Parser robustness limits (expression depth, error cap, ...).
    pub parse: ParseOptions,
    /// Instance-resolution / context-reduction budget.
    pub reduce: ReduceBudget,
    /// Evaluator budget (fuel, nesting depth, allocation cap).
    pub budget: Budget,
    /// Per-rule lint levels, used by [`lint_source`]. Rules left at
    /// their default warn; `deny` escalates findings to errors (so
    /// [`Check::ok`] fails), `allow` silences a rule.
    pub lint_levels: LintConfig,
    /// Per-rule coherence levels (`L0008`–`L0011`). The structural
    /// rules — overlapping instances, prelude duplicates, superclass
    /// cycles — deny by default, so an incoherent instance world
    /// still fails compilation the way it did when the class-env
    /// build rejected it outright; now with spans for *both*
    /// instances and a counterexample type.
    pub coherence_levels: CoherenceConfig,
    /// Run the class-law harness ([`tc_coherence::check_laws`]) after
    /// the static passes: generated `Eq`/`Ord` law programs are
    /// elaborated through the ordinary dictionary conversion (reusing
    /// this run's warm resolve cache) and evaluated under
    /// [`Options::law_budget`]; violations report as `L0011`. Off by
    /// default — it costs one extra elaboration plus a few dozen tiny
    /// evaluations.
    pub check_laws: bool,
    /// Evaluator budget per generated law program. Laws are a handful
    /// of applications over enumerated samples, so the default is the
    /// evaluator's small budget.
    pub law_budget: Budget,
    /// Memoize instance resolution across the whole elaboration (the
    /// tabled-resolution layer). On by default; the off switch exists
    /// for baselines and the differential suite.
    pub memoize_resolution: bool,
    /// Hoist repeated compound-dictionary constructions into shared
    /// bindings after conversion (and before linting, so `L0007` sees
    /// the shared program). On by default.
    pub share_dictionaries: bool,
    /// Record per-stage wall-clock spans and pipeline counters in
    /// [`Check::telemetry`]. Off by default; when off, the telemetry
    /// handle allocates nothing.
    pub trace_timing: bool,
    /// Record an explain-trace of every instance resolution in
    /// [`Elaboration::resolution_trace`] (rendered by
    /// [`Check::render_explain`]). Off by default and zero-cost when
    /// off.
    pub trace_resolution: bool,
    /// Profile the evaluator per top-level binding; the profile lands
    /// in [`RunResult::profile`]. Off by default and zero-cost when
    /// off.
    pub profile_eval: bool,
    /// Collect the whole-pipeline metric catalog — parser recoveries,
    /// interner traffic, resolver cache counters and goal-depth
    /// histogram, sharing counters, evaluator counters — into
    /// [`PipelineStats::metrics`]. Off by default; when off, every
    /// instrumented path is a single branch and allocates nothing.
    pub collect_metrics: bool,
    /// Record one wall-clock span per top-level resolution goal (for
    /// the Chrome trace export, [`Check::chrome_trace_json`]). Off by
    /// default and allocation-free when off. Goal spans share the
    /// telemetry epoch, so enable [`Options::trace_timing`] too if the
    /// spans should nest inside the stage spans.
    pub trace_goal_spans: bool,
    /// Cooperative cancellation token (usually deadline-backed, from
    /// the serve layer). Checked at stage boundaries, inside the
    /// resolver's search loop, and inside the evaluator's fuel loop;
    /// a tripped token yields an `E0430` diagnostic (or a structured
    /// `cancelled` eval error), never a partial hang. `None` (the
    /// default) disables every check's slow path.
    pub cancel: Option<CancelToken>,
    /// Override the resolution memo-table capacity (graceful
    /// degradation under load: a smaller table sheds memory, not
    /// correctness). `None` keeps the cache's own default.
    pub cache_capacity: Option<usize>,
    /// Deterministic fault injection for this run; disabled (and one
    /// branch per site) by default. See [`resilience`].
    pub faults: Faults,
    /// Flight-recorder scope for this run (see [`tc_trace::events`]):
    /// stage boundaries, resolver goals, cache evictions, evaluator
    /// budget checkpoints, deadline cancellations, and fault firings
    /// each record one fixed-size event into the scope's ring buffer.
    /// Off by default — every site is a single branch and allocates
    /// nothing.
    pub events: EventScope,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            use_prelude: true,
            parse: ParseOptions::default(),
            reduce: ReduceBudget::default(),
            budget: Budget::default(),
            lint_levels: LintConfig::default(),
            coherence_levels: CoherenceConfig::default(),
            check_laws: false,
            law_budget: Budget::small(),
            memoize_resolution: true,
            share_dictionaries: true,
            trace_timing: false,
            trace_resolution: false,
            profile_eval: false,
            collect_metrics: false,
            trace_goal_spans: false,
            cancel: None,
            cache_capacity: None,
            faults: Faults::none(),
            events: EventScope::off(),
        }
    }
}

impl Options {
    /// Options without the prelude — the program is compiled alone.
    pub fn bare() -> Self {
        Options {
            use_prelude: false,
            ..Options::default()
        }
    }

    /// Options with the resolution memo table and dictionary sharing
    /// both off — the unoptimized baseline the differential suite and
    /// benches compare against.
    pub fn unoptimized() -> Self {
        Options {
            memoize_resolution: false,
            share_dictionaries: false,
            ..Options::default()
        }
    }

    /// Replace the evaluator budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// Counters from one pipeline run: instance resolution, dictionary
/// sharing, and — after evaluation — evaluator resource usage.
/// Rendered by the example runner's `--stats` flag and serialized into
/// bench reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineStats {
    pub resolve: ResolveStats,
    pub share: ShareStats,
    /// Evaluator counters; `None` until the program has been run
    /// (populated by [`run_checked`]).
    pub eval: Option<EvalStats>,
    /// The whole-pipeline metric catalog; enabled (and populated) iff
    /// [`Options::collect_metrics`] was set, otherwise off and
    /// allocation-free.
    pub metrics: MetricsRegistry,
}

impl PipelineStats {
    /// Write the counters as fields of the writer's current object.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.field_u64("goals", self.resolve.goals);
        w.field_u64("table_hits", self.resolve.table_hits);
        w.field_u64("table_misses", self.resolve.table_misses);
        w.field_f64("hit_rate", self.resolve.hit_rate(), 4);
        w.field_f64("hit_rate_pct", self.resolve.hit_rate() * 100.0, 1);
        w.field_u64("dicts_constructed", self.resolve.dicts_constructed);
        w.field_u64("resolve_steps", self.resolve.steps);
        w.field_u64("dict_sites_before_sharing", self.share.constructions_before);
        w.field_u64("dict_sites_after_sharing", self.share.constructions_after);
        w.field_u64("dicts_shared", self.share.occurrences_shared);
        w.field_u64("share_bindings", self.share.hoisted_bindings);
        match &self.eval {
            Some(e) => {
                w.begin_object_field("eval");
                w.field_u64("fuel_used", e.fuel_used);
                w.field_u64("peak_allocs", e.peak_allocs);
                w.field_u64("thunks_created", e.thunks_created);
                w.field_u64("forces", e.forces);
                w.end_object();
            }
            None => w.field_null("eval"),
        }
        if self.metrics.is_enabled() {
            w.begin_object_field("metrics");
            self.metrics.write_json(w);
            w.end_object();
        } else {
            w.field_null("metrics");
        }
    }

    /// One JSON object (the build is offline — no serde; serialization
    /// goes through the shared [`tc_trace::JsonWriter`]).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        self.write_json(&mut w);
        w.end_object();
        w.finish()
    }
}

/// The result of compiling (but not running) a program: the combined
/// source, the elaborated core, and every diagnostic from every stage.
pub struct Check {
    /// Exactly the text that was compiled (prelude + user program when
    /// the prelude is enabled). All diagnostic spans index into this.
    pub full_source: String,
    /// Byte offset where the user program starts in `full_source`.
    pub user_offset: usize,
    /// Elaborated core program and the inferred type schemes.
    pub elab: Elaboration,
    /// Accumulated diagnostics from lexing through dictionary
    /// conversion.
    pub diags: Diagnostics,
    /// Resolution and sharing counters for this run.
    pub stats: PipelineStats,
    /// Per-stage spans and counters; disabled (and allocation-free)
    /// unless [`Options::trace_timing`] was set.
    pub telemetry: Telemetry,
    /// One wall-clock span per top-level resolution goal, on the same
    /// epoch as the telemetry stage spans; empty unless
    /// [`Options::trace_goal_spans`] was set.
    pub goal_spans: Vec<SpanEvent>,
}

impl Check {
    /// Did the program compile without errors? (Warnings are fine.)
    pub fn ok(&self) -> bool {
        !self.diags.has_errors()
    }

    /// Render every diagnostic against the compiled source, in source
    /// order (errors before warnings at the same location) with a
    /// severity summary line.
    pub fn render_diagnostics(&self) -> String {
        self.diags.render_all_sorted(&self.full_source)
    }

    /// The inferred type scheme of a top-level binding, rendered.
    pub fn scheme(&self, name: &str) -> Option<String> {
        self.elab.schemes.get(name).map(|s| s.to_string())
    }

    /// Render the resolution explain-trace as an indented goal tree.
    /// `None` unless [`Options::trace_resolution`] was set.
    pub fn render_explain(&self) -> Option<String> {
        self.elab.resolution_trace.as_ref().map(|t| t.render())
    }

    /// Serialize the run as a Chrome trace-event JSON document —
    /// loadable in Perfetto / `chrome://tracing` — with one complete
    /// (`"ph":"X"`) event per pipeline stage span and one per
    /// top-level resolution goal. Meaningful when
    /// [`Options::trace_timing`] was set (and
    /// [`Options::trace_goal_spans`] for the per-goal events); always
    /// a valid document, possibly with an empty event list.
    pub fn chrome_trace_json(&self) -> String {
        tc_trace::chrome_trace_json(&self.telemetry, &self.goal_spans)
    }

    /// Pretty-print the whole converted core program (for debugging
    /// and for tests that inspect the translation).
    pub fn pretty_core(&self) -> String {
        let mut out = String::new();
        for (name, body) in &self.elab.core.binds {
            out.push_str(name);
            out.push_str(" = ");
            out.push_str(&tc_coreir::pretty(body));
            out.push_str(";\n");
        }
        out
    }
}

/// What happened when the program was run.
#[derive(Debug)]
pub enum Outcome {
    /// `main` evaluated to a value, rendered as text.
    Value(String),
    /// The program did not compile; see [`Check::diags`].
    CompileErrors,
    /// The program compiled but defines no `main`.
    NoMain,
    /// `main` evaluation failed with a structured error (including
    /// budget exhaustion — never a panic, never a hang).
    Eval(EvalError),
}

/// A full pipeline run: the compilation record, the outcome, and —
/// when [`Options::profile_eval`] was set — the evaluator profile.
pub struct RunResult {
    pub check: Check,
    pub outcome: Outcome,
    /// Per-binding evaluator profile; `None` unless profiling was on
    /// and the program was actually evaluated.
    pub profile: Option<EvalProfile>,
}

impl RunResult {
    /// Serialize the whole run — stage spans, counters, pipeline
    /// stats, profile, outcome — as one JSON object.
    pub fn trace_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        self.check.telemetry.write_json(&mut w);
        w.begin_object_field("stats");
        self.check.stats.write_json(&mut w);
        w.end_object();
        match &self.profile {
            Some(p) => {
                w.begin_array_field("profile");
                for b in &p.bindings {
                    w.begin_object();
                    w.field_str("binding", &b.name);
                    w.field_u64("forces", b.forces);
                    w.field_u64("fuel", b.fuel);
                    w.field_u64("thunks", b.thunks);
                    w.end_object();
                }
                w.end_array();
            }
            None => w.field_null("profile"),
        }
        w.begin_object_field("outcome");
        let (kind, detail) = match &self.outcome {
            Outcome::Value(v) => ("value", Some(v.clone())),
            Outcome::CompileErrors => ("compile-errors", None),
            Outcome::NoMain => ("no-main", None),
            Outcome::Eval(e) => ("eval-error", Some(e.to_string())),
        };
        w.field_str("kind", kind);
        match &detail {
            Some(d) => w.field_str("detail", d),
            None => w.field_null("detail"),
        }
        // Structured error shape for machine consumers (the serve
        // protocol relays these): a stable kebab-case code plus, for
        // budget errors, where the budget died and what was left.
        if let Outcome::Eval(e) = &self.outcome {
            w.field_str("code", e.code());
            match e.budget() {
                Some(b) => {
                    w.begin_object_field("budget");
                    match &b.binding {
                        Some(name) => w.field_str("binding", name),
                        None => w.field_null("binding"),
                    }
                    w.field_u64("fuel_left", b.fuel_left);
                    w.field_u64("allocs_left", b.allocs_left);
                    w.field_u64("depth", b.depth as u64);
                    w.end_object();
                }
                None => w.field_null("budget"),
            }
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Stage-boundary cancellation check. The first tripped check emits
/// one `E0430` diagnostic, records a `Cancelled` event naming the
/// stage that was about to run, and latches `cancelled`, so later
/// boundaries skip their stages silently instead of piling on
/// duplicate errors.
fn deadline_tripped(
    opts: &Options,
    diags: &mut Diagnostics,
    cancelled: &mut bool,
    next_stage: TraceStage,
) -> bool {
    if *cancelled {
        return true;
    }
    if opts.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
        *cancelled = true;
        opts.events.cancelled(next_stage);
        diags.error(
            DiagStage::Driver,
            CANCELLED_CODE,
            "compilation deadline exceeded; remaining stages skipped",
            Span::DUMMY,
        );
        return true;
    }
    false
}

/// Shared pipeline body behind [`check_source`] and [`lint_source`].
fn compile(src: &str, opts: &Options, lint: bool) -> Check {
    let mut telemetry = if opts.trace_timing {
        Telemetry::new()
    } else {
        Telemetry::off()
    };
    let (full_source, user_offset) = if opts.use_prelude {
        (format!("{PRELUDE}\n{src}"), PRELUDE.len() + 1)
    } else {
        (src.to_string(), 0)
    };

    let timer = telemetry.start();
    opts.events.stage_start(TraceStage::Lex);
    let (toks, mut diags) = tc_syntax::lex(&full_source);
    telemetry.record(TraceStage::Lex, timer, diags.len() as u64);
    opts.events.stage_end(TraceStage::Lex, diags.len() as u64);
    let mut seen = diags.len();

    let mut metrics = if opts.collect_metrics {
        MetricsRegistry::new()
    } else {
        MetricsRegistry::off()
    };

    // Every stage boundary below doubles as a cancellation point: a
    // deadline that expires mid-pipeline stops the run at the next
    // boundary with one `E0430` diagnostic, and the skipped stages
    // leave default (empty) results. Fault sites sit at stage entry,
    // so an injected panic unwinds out of this function exactly where
    // a real stage bug would.
    let mut cancelled = false;

    let timer = telemetry.start();
    opts.events.stage_start(TraceStage::Parse);
    let _ = opts.faults.fire_traced(FaultSite::Parse, &opts.events);
    let (prog, pd, pstats) = tc_syntax::parse_program_with(&toks, opts.parse.clone());
    diags.extend(pd);
    telemetry.record(TraceStage::Parse, timer, (diags.len() - seen) as u64);
    opts.events
        .stage_end(TraceStage::Parse, (diags.len() - seen) as u64);
    metrics.add(CounterId::ParseRecoveries, pstats.recoveries);
    seen = diags.len();

    let mut gen = VarGen::new();
    let cenv = if deadline_tripped(opts, &mut diags, &mut cancelled, TraceStage::ClassEnv) {
        ClassEnv::default()
    } else {
        let timer = telemetry.start();
        opts.events.stage_start(TraceStage::ClassEnv);
        let _ = opts.faults.fire_traced(FaultSite::ClassEnv, &opts.events);
        let (cenv, cd) = build_class_env(&prog, &mut gen);
        diags.extend(cd);
        telemetry.record(TraceStage::ClassEnv, timer, (diags.len() - seen) as u64);
        opts.events
            .stage_end(TraceStage::ClassEnv, (diags.len() - seen) as u64);
        seen = diags.len();
        cenv
    };

    // Coherence runs between the class env and elaboration: overlap
    // and cycle findings only need instance heads, so they stay
    // available even when a tripped deadline skips elaboration. No
    // fault site here — the pass is pure table-walking over the env.
    if !deadline_tripped(opts, &mut diags, &mut cancelled, TraceStage::Coherence) {
        let timer = telemetry.start();
        opts.events.stage_start(TraceStage::Coherence);
        diags.extend(tc_coherence::check_coherence(
            &CoherenceInput {
                cenv: &cenv,
                user_start: user_offset,
            },
            &opts.coherence_levels,
            &mut metrics,
        ));
        telemetry.record(TraceStage::Coherence, timer, (diags.len() - seen) as u64);
        opts.events
            .stage_end(TraceStage::Coherence, (diags.len() - seen) as u64);
        seen = diags.len();
    }

    let mut elab = if deadline_tripped(opts, &mut diags, &mut cancelled, TraceStage::Elaborate) {
        Elaboration::default()
    } else {
        let timer = telemetry.start();
        opts.events.stage_start(TraceStage::Elaborate);
        let mut reduce = opts.reduce;
        if opts.faults.fire_traced(FaultSite::Elaborate, &opts.events) == FaultOutcome::Budget {
            // Injected budget exhaustion: every nontrivial resolution
            // goal now fails structurally (E0421), never hangs.
            reduce = ReduceBudget {
                max_depth: 1,
                max_steps: 1,
            };
        }
        let (elab, ed) = elaborate_with(
            &prog,
            &cenv,
            &mut gen,
            ElabOptions {
                budget: reduce,
                memoize: opts.memoize_resolution,
                trace_resolution: opts.trace_resolution,
                collect_metrics: opts.collect_metrics,
                // Goal spans share the telemetry epoch so they nest inside
                // the `elaborate` stage span; with timing off they get
                // their own epoch and still order correctly.
                goal_span_epoch: opts
                    .trace_goal_spans
                    .then(|| telemetry.epoch().unwrap_or_else(std::time::Instant::now)),
                cancel: opts.cancel.clone(),
                cache_capacity: opts.cache_capacity,
                events: opts.events.clone(),
            },
        );
        diags.extend(ed);
        telemetry.record(TraceStage::Elaborate, timer, (diags.len() - seen) as u64);
        opts.events
            .stage_end(TraceStage::Elaborate, (diags.len() - seen) as u64);
        seen = diags.len();
        elab
    };

    // Dictionary sharing runs between conversion and linting: `L0007`
    // must see the shared program, or it would report constructions
    // the pass has already hoisted. The span is recorded even with
    // sharing off, so the stage sequence is stable across configs.
    let timer = telemetry.start();
    let share = if opts.share_dictionaries
        && !deadline_tripped(opts, &mut diags, &mut cancelled, TraceStage::Share)
    {
        opts.events.stage_start(TraceStage::Share);
        let _ = opts.faults.fire_traced(FaultSite::Share, &opts.events);
        let share = tc_coreir::share_program_metered(&mut elab.core, &mut metrics);
        opts.events.stage_end(TraceStage::Share, 0);
        share
    } else {
        ShareStats::default()
    };
    telemetry.record(TraceStage::Share, timer, 0);

    if lint && !deadline_tripped(opts, &mut diags, &mut cancelled, TraceStage::Lint) {
        let timer = telemetry.start();
        opts.events.stage_start(TraceStage::Lint);
        let _ = opts.faults.fire_traced(FaultSite::Lint, &opts.events);
        diags.extend(tc_lint::run_lints(
            &LintInput {
                program: &prog,
                cenv: &cenv,
                core: &elab.core,
                user_start: user_offset,
            },
            &opts.lint_levels,
        ));
        telemetry.record(TraceStage::Lint, timer, (diags.len() - seen) as u64);
        opts.events
            .stage_end(TraceStage::Lint, (diags.len() - seen) as u64);
    }

    // The law harness runs last among the static passes: it needs the
    // elaboration's warm resolve cache (seeded below, so law goals
    // resolve in O(1)) and only makes sense for programs that compile
    // — law verdicts on an erroneous program would blame dictionaries
    // that were never built. Its findings land under the same
    // `Coherence` stage as the structural checks.
    if opts.check_laws
        && !diags.has_errors()
        && !deadline_tripped(opts, &mut diags, &mut cancelled, TraceStage::Coherence)
    {
        let before = diags.len();
        let timer = telemetry.start();
        diags.extend(tc_coherence::check_laws(
            &LawInput {
                program: &prog,
                cenv: &cenv,
                user_start: user_offset,
            },
            &opts.coherence_levels,
            &LawOptions {
                eval_budget: opts.law_budget,
                reduce: opts.reduce,
                cancel: opts.cancel.clone(),
                cache_capacity: opts.cache_capacity,
            },
            elab.cache.take(),
            &mut gen,
            &mut metrics,
        ));
        telemetry.record(TraceStage::Coherence, timer, (diags.len() - before) as u64);
    }

    // Final boundary: a deadline that expired during the last stage
    // still surfaces as E0430 (there is no later boundary to catch it).
    let _ = deadline_tripped(opts, &mut diags, &mut cancelled, TraceStage::Eval);

    if telemetry.is_enabled() {
        telemetry.counter("core_bindings", elab.core.binds.len() as u64);
        telemetry.counter("core_nodes", elab.core.node_count());
        telemetry.counter("diagnostics", diags.len() as u64);
    }

    // Fold the elaboration's resolver/interner metrics into the
    // pipeline registry (counters add; gauges and histograms come only
    // from the elaboration side, so the merge is lossless).
    metrics.merge(&elab.metrics);
    let goal_spans = std::mem::take(&mut elab.goal_spans);

    let stats = PipelineStats {
        resolve: elab.stats,
        share,
        eval: None,
        metrics,
    };
    Check {
        full_source,
        user_offset,
        elab,
        diags,
        stats,
        telemetry,
        goal_spans,
    }
}

/// Compile source text through elaboration and dictionary conversion.
/// Never panics; all failures are reported in [`Check::diags`].
pub fn check_source(src: &str, opts: &Options) -> Check {
    compile(src, opts, false)
}

/// Like [`check_source`], but additionally run the `tc-lint`
/// static-analysis pass over the surface AST, the class environment,
/// and the converted core, at the levels in [`Options::lint_levels`].
/// Warn-level findings never make [`Check::ok`] fail; deny-level
/// findings do.
pub fn lint_source(src: &str, opts: &Options) -> Check {
    compile(src, opts, true)
}

/// Run an already-compiled program: if it is error-free and has a
/// `main`, evaluate it under the evaluator budget. Evaluation is
/// timed into the check's telemetry, and its resource counters land
/// in [`PipelineStats::eval`].
pub fn run_checked(mut check: Check, opts: &Options) -> RunResult {
    let mut profile = None;
    let outcome = if !check.ok() {
        Outcome::CompileErrors
    } else {
        match check.elab.core.main.clone() {
            None => Outcome::NoMain,
            Some(entry) => {
                let timer = check.telemetry.start();
                opts.events.stage_start(TraceStage::Eval);
                // Metrics want the per-binding fuel histogram, which
                // only the profiler collects — profile internally when
                // metrics are on, but surface the profile to the
                // caller only when they asked for it.
                let metrics_on = check.stats.metrics.is_enabled();
                let mut budget = opts.budget;
                if opts.faults.fire_traced(FaultSite::Eval, &opts.events) == FaultOutcome::Budget {
                    // Injected exhaustion: the very first tick trips,
                    // producing a structured fuel error with a
                    // zero-remaining budget snapshot.
                    budget = Budget {
                        fuel: 1,
                        max_depth: 1,
                        max_allocs: 1,
                    };
                }
                let run = tc_eval::run_entry_with(
                    &check.elab.core,
                    &entry,
                    &EvalOptions {
                        budget,
                        profile: opts.profile_eval || metrics_on,
                        cancel: opts.cancel.clone(),
                        events: opts.events.clone(),
                    },
                );
                check.telemetry.record(TraceStage::Eval, timer, 0);
                opts.events.stage_end(TraceStage::Eval, 0);
                check.stats.eval = Some(run.stats);
                if metrics_on {
                    let m = &mut check.stats.metrics;
                    m.add(CounterId::EvalThunksCreated, run.stats.thunks_created);
                    m.add(CounterId::EvalForces, run.stats.forces);
                    m.add(CounterId::EvalFuelUsed, run.stats.fuel_used);
                    if let Some(p) = &run.profile {
                        for b in &p.bindings {
                            m.observe(HistogramId::EvalBindingFuel, b.fuel);
                        }
                    }
                }
                profile = if opts.profile_eval { run.profile } else { None };
                match run.result {
                    Ok(v) => Outcome::Value(v),
                    Err(e) => Outcome::Eval(e),
                }
            }
        }
    };
    RunResult {
        check,
        outcome,
        profile,
    }
}

/// Compile and, if the program is error-free and has a `main`, run it
/// under the evaluator budget.
pub fn run_source(src: &str, opts: &Options) -> RunResult {
    run_checked(check_source(src, opts), opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> RunResult {
        run_source(src, &Options::default())
    }

    fn value(src: &str) -> String {
        let r = run(src);
        match r.outcome {
            Outcome::Value(v) => v,
            other => panic!(
                "expected a value, got {other:?}\n{}",
                r.check.render_diagnostics()
            ),
        }
    }

    #[test]
    fn prelude_is_clean() {
        let c = check_source("", &Options::default());
        assert!(c.ok(), "{}", c.render_diagnostics());
        assert!(c.elab.core.verify_converted().is_empty());
    }

    #[test]
    fn member_from_the_paper() {
        let v = value("main = member 3 (enumFromTo 1 5);");
        assert_eq!(v, "True");
        let c = check_source("", &Options::default());
        assert_eq!(
            c.scheme("member").as_deref(),
            Some("Eq a => a -> List a -> Bool")
        );
    }

    #[test]
    fn num_methods_dispatch_through_dictionaries() {
        assert_eq!(value("main = add (mul 6 7) (neg 2);"), "40");
    }

    #[test]
    fn equality_on_lists_uses_instance_context() {
        assert_eq!(
            value("main = eq (cons 1 (cons 2 nil)) (enumFromTo 1 2);"),
            "True"
        );
        assert_eq!(value("main = neq nil (cons False nil);"), "True");
    }

    #[test]
    fn list_pipeline_renders() {
        assert_eq!(
            value("main = map (\\x -> mul x x) (enumFromTo 1 4);"),
            "[1, 4, 9, 16]"
        );
    }

    #[test]
    fn laziness_take_from_infinite_list() {
        let v = value("from n = cons n (from (add n 1));\nmain = take 3 (from 10);");
        assert_eq!(v, "[10, 11, 12]");
    }

    #[test]
    fn compile_errors_stop_evaluation() {
        let r = run("main = eq 1 True;");
        assert!(matches!(r.outcome, Outcome::CompileErrors));
        assert!(r.check.diags.has_errors());
        // Rendering must point into the combined source without panicking.
        let rendered = r.check.render_diagnostics();
        assert!(!rendered.is_empty());
    }

    #[test]
    fn missing_main_reported() {
        let r = run("x = 1;");
        assert!(matches!(r.outcome, Outcome::NoMain));
    }

    #[test]
    fn fuel_exhaustion_is_structured() {
        // Rendering an infinite list forces cell after cell at shallow
        // depth, so the fuel budget is what trips.
        let opts = Options::default().with_budget(Budget::small());
        let r = run_source("from n = cons n (from (add n 1));\nmain = from 0;", &opts);
        assert!(
            matches!(r.outcome, Outcome::Eval(EvalError::FuelExhausted(_))),
            "{:?}",
            r.outcome
        );
        // The budget payload shows an empty tank (fuel died while
        // rendering, outside any named global, so no binding here)
        // and the run trace relays the structured shape.
        let Outcome::Eval(e) = &r.outcome else {
            unreachable!()
        };
        let b = e.budget().expect("fuel errors carry a snapshot");
        assert_eq!(b.fuel_left, 0);
        let json = r.trace_json();
        assert!(json.contains("\"code\": \"fuel-exhausted\""), "{json}");
        assert!(json.contains("\"fuel_left\": 0"), "{json}");
    }

    #[test]
    fn nonterminating_loop_is_budgeted() {
        // Deep non-tail recursion trips whichever budget fills first —
        // either way the outcome is structured, not a hang.
        let opts = Options::default().with_budget(Budget::small());
        let r = run_source("loop x = loop x;\nmain = loop 1;", &opts);
        assert!(
            matches!(
                r.outcome,
                Outcome::Eval(EvalError::FuelExhausted(_) | EvalError::DepthExceeded(_))
            ),
            "{:?}",
            r.outcome
        );
    }

    #[test]
    fn user_code_diagnostics_point_after_prelude() {
        let r = run("main = undefinedName;");
        assert!(matches!(r.outcome, Outcome::CompileErrors));
        assert!(r
            .check
            .diags
            .iter()
            .any(|d| d.code == "E0405" && (d.span.start as usize) >= r.check.user_offset));
    }

    #[test]
    fn bare_options_skip_prelude() {
        let c = check_source("main = eq 1 1;", &Options::bare());
        // No prelude => no Eq class => unbound `eq`.
        assert!(c.diags.iter().any(|d| d.code == "E0405"));
    }

    #[test]
    fn core_dump_mentions_dictionaries() {
        let c = check_source("same x y = eq x y;", &Options::default());
        assert!(c.ok(), "{}", c.render_diagnostics());
        let core = c.pretty_core();
        assert!(core.contains("$dict"), "{core}");
    }

    #[test]
    fn stats_are_populated_and_memo_hits() {
        // The prelude alone resolves plenty of goals; with the memo
        // table on, repeated ground goals hit.
        let c = check_source(
            "a = eq (cons 1 nil) nil;\nb = eq (cons 2 nil) nil;",
            &Options::default(),
        );
        assert!(c.ok(), "{}", c.render_diagnostics());
        assert!(c.stats.resolve.goals > 0);
        assert!(c.stats.resolve.table_hits > 0, "{:?}", c.stats.resolve);
        let off = check_source(
            "a = eq (cons 1 nil) nil;\nb = eq (cons 2 nil) nil;",
            &Options::unoptimized(),
        );
        assert_eq!(off.stats.resolve.table_hits, 0, "{:?}", off.stats.resolve);
        assert!(
            off.stats.resolve.dicts_constructed > c.stats.resolve.dicts_constructed,
            "memoization must reduce fresh constructions: {:?} vs {:?}",
            off.stats.resolve,
            c.stats.resolve
        );
        // JSON rendering stays well-formed enough to eyeball.
        let json = c.stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"table_hits\""), "{json}");
    }

    #[test]
    fn sharing_hoists_repeated_dictionaries_in_core() {
        let src = "p = eq (cons 1 nil) (cons 2 nil);\n\
                   q = and (eq (cons 1 nil) nil) (eq (cons 3 nil) nil);";
        let shared = check_source(src, &Options::default());
        assert!(shared.ok(), "{}", shared.render_diagnostics());
        assert!(
            shared.stats.share.hoisted_bindings > 0,
            "{:?}",
            shared.stats.share
        );
        assert!(shared.pretty_core().contains("$sh0"), "no shared binding");
        let unshared = check_source(src, &Options::unoptimized());
        assert!(!unshared.pretty_core().contains("$sh0"));
        assert!(
            shared.stats.share.constructions_after < unshared.stats.share.constructions_before
                || unshared.stats.share.constructions_before == 0,
        );
    }

    #[test]
    fn metrics_off_by_default_and_allocation_free() {
        let r = run("main = eq (cons 1 nil) (cons 1 nil);");
        assert!(r.check.stats.metrics.allocates_nothing());
        assert!(r.check.goal_spans.is_empty());
        // The stats JSON still carries an (explicitly null) metrics field.
        let json = r.check.stats.to_json();
        assert!(json.contains("\"metrics\": null"), "{json}");
    }

    #[test]
    fn metrics_collect_across_the_whole_pipeline() {
        let opts = Options {
            collect_metrics: true,
            ..Options::default()
        };
        let src = "p = eq (cons 1 nil) (cons 2 nil);\n\
                   q = and (eq (cons 1 nil) nil) (eq (cons 3 nil) nil);\n\
                   main = q;";
        let r = run_source(src, &opts);
        assert!(matches!(r.outcome, Outcome::Value(_)), "{:?}", r.outcome);
        let stats = &r.check.stats;
        let m = &stats.metrics;
        // Resolver metrics agree with the existing counters.
        assert_eq!(m.counter(CounterId::ResolveGoals), stats.resolve.goals);
        assert_eq!(
            m.counter(CounterId::ResolveCacheHits),
            stats.resolve.table_hits
        );
        // Interner, sharing, and evaluator all contributed.
        assert!(m.counter(CounterId::InternFresh) > 0);
        assert_eq!(
            m.counter(CounterId::ShareDictsHoisted),
            stats.share.hoisted_bindings
        );
        let Some(eval) = stats.eval.as_ref() else {
            panic!("main was evaluated");
        };
        assert_eq!(m.counter(CounterId::EvalForces), eval.forces);
        assert_eq!(m.counter(CounterId::EvalFuelUsed), eval.fuel_used);
        // The goal-depth histogram saw every goal.
        let Some(h) = m.histogram(HistogramId::ResolveGoalDepth) else {
            panic!("metrics are on");
        };
        assert_eq!(h.count, stats.resolve.goals);
        // Per-binding fuel was observed even though no profile is
        // surfaced (profiling ran internally for the histogram).
        assert!(r.profile.is_none());
        let Some(fuel) = m.histogram(HistogramId::EvalBindingFuel) else {
            panic!("metrics are on");
        };
        assert!(fuel.count > 0);
        // And the JSON form is well-formed with a metrics object.
        let json = stats.to_json();
        tc_trace::json::check(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"resolve.goals\""), "{json}");
    }

    #[test]
    fn metrics_do_not_perturb_results_or_counters() {
        let src = "main = member 3 (enumFromTo 1 5);";
        let plain = run_source(src, &Options::default());
        let metered = run_source(
            src,
            &Options {
                collect_metrics: true,
                trace_goal_spans: true,
                ..Options::default()
            },
        );
        let (Outcome::Value(a), Outcome::Value(b)) = (&plain.outcome, &metered.outcome) else {
            panic!("{:?} / {:?}", plain.outcome, metered.outcome);
        };
        assert_eq!(a, b);
        assert_eq!(plain.check.stats.resolve, metered.check.stats.resolve);
        assert_eq!(plain.check.stats.share, metered.check.stats.share);
        assert_eq!(plain.check.stats.eval, metered.check.stats.eval);
    }

    #[test]
    fn goal_spans_cover_top_level_goals() {
        let opts = Options {
            trace_timing: true,
            trace_goal_spans: true,
            ..Options::default()
        };
        let c = check_source("main = eq (cons 1 nil) (cons 2 nil);", &opts);
        assert!(c.ok(), "{}", c.render_diagnostics());
        assert!(!c.goal_spans.is_empty());
        assert!(c.goal_spans.iter().all(|s| s.cat == "resolve"));
        let trace = c.chrome_trace_json();
        tc_trace::json::check(&trace).unwrap_or_else(|e| panic!("{e}\n{trace}"));
        assert!(trace.contains("\"ph\": \"X\""), "{trace}");
    }

    #[test]
    fn pre_expired_deadline_stops_the_pipeline_structurally() {
        let token = tc_trace::CancelToken::new();
        token.cancel();
        let opts = Options {
            cancel: Some(token),
            ..Options::default()
        };
        let r = run_source("main = member 3 (enumFromTo 1 5);", &opts);
        assert!(
            matches!(r.outcome, Outcome::CompileErrors),
            "{:?}",
            r.outcome
        );
        assert!(
            r.check.diags.iter().any(|d| d.code == CANCELLED_CODE),
            "{}",
            r.check.render_diagnostics()
        );
        // Exactly one deadline diagnostic — the latch holds across
        // every later stage boundary.
        assert_eq!(
            r.check
                .diags
                .iter()
                .filter(|d| d.code == CANCELLED_CODE)
                .count(),
            1
        );
    }

    #[test]
    fn deadline_interrupts_evaluation_with_a_structured_error() {
        // Compilation beats the deadline; the infinite render then
        // trips the evaluator's cancellation poll (fuel is ample, so
        // only the deadline can stop it).
        let token = tc_trace::CancelToken::with_deadline(std::time::Duration::from_millis(30));
        let opts = Options {
            cancel: Some(token),
            ..Options::default()
        }
        .with_budget(Budget {
            fuel: u64::MAX / 2,
            max_depth: 200,
            max_allocs: u64::MAX / 2,
        });
        let r = run_source("ones = cons 1 ones;\nmain = ones;", &opts);
        match &r.outcome {
            Outcome::Eval(e @ EvalError::Cancelled(_)) => {
                assert_eq!(e.code(), "cancelled");
            }
            other => panic!("expected a cancelled eval error, got {other:?}"),
        }
    }

    #[test]
    fn injected_panics_unwind_and_are_isolated() {
        let plan = FaultPlan::parse("elaborate=panic").unwrap();
        let opts = Options {
            faults: plan.for_request(0),
            ..Options::default()
        };
        let err = match resilience::isolated(|| run_source("main = 1;", &opts)) {
            Err(e) => e,
            Ok(_) => panic!("the injected panic should have unwound"),
        };
        assert!(err.starts_with("tc-fault:"), "{err}");
        assert!(err.contains("elaborate"), "{err}");
    }

    #[test]
    fn injected_budget_faults_produce_structured_exhaustion() {
        // At the elaborate site: resolution budget dies => E0421.
        let plan = FaultPlan::parse("elaborate=budget").unwrap();
        let opts = Options {
            faults: plan.for_request(0),
            ..Options::default()
        };
        let c = check_source("main = eq (cons 1 nil) nil;", &opts);
        assert!(!c.ok());
        assert!(
            c.diags.iter().any(|d| d.code == "E0421"),
            "{}",
            c.render_diagnostics()
        );
        // At the eval site: the first tick trips fuel.
        let plan = FaultPlan::parse("eval=budget").unwrap();
        let opts = Options {
            faults: plan.for_request(0),
            ..Options::default()
        };
        let r = run_source("main = member 3 (enumFromTo 1 5);", &opts);
        assert!(
            matches!(
                r.outcome,
                Outcome::Eval(EvalError::FuelExhausted(_) | EvalError::DepthExceeded(_))
            ),
            "{:?}",
            r.outcome
        );
    }

    #[test]
    fn optimizations_do_not_change_results() {
        let src = "main = and (eq (cons 1 (cons 2 nil)) (enumFromTo 1 2))\n\
                   (eq (cons 1 (cons 2 nil)) (enumFromTo 1 2));";
        let on = run_source(src, &Options::default());
        let off = run_source(src, &Options::unoptimized());
        let (Outcome::Value(a), Outcome::Value(b)) = (&on.outcome, &off.outcome) else {
            panic!("{:?} / {:?}", on.outcome, off.outcome);
        };
        assert_eq!(a, b);
        assert_eq!(a, "True");
    }
}
