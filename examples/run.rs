//! Run a Mini-Haskell program through the whole pipeline:
//!
//! ```sh
//! cargo run --example run -- program.mh
//! echo 'main = member 3 (enumFromTo 1 5);' | cargo run --example run
//! cargo run --example run -- --small program.mh   # tiny evaluator budget
//! cargo run --example run -- --core program.mh    # dump converted core
//! cargo run --example run -- --lint program.mh    # run the tc-lint pass
//! cargo run --example run -- --deny-lints program.mh          # lints fail the build
//! cargo run --example run -- --lint --lint-level=unused-binding=allow program.mh
//! cargo run --example run -- --stats program.mh   # resolution/sharing stats (JSON, stderr)
//! cargo run --example run -- --no-memo --no-share program.mh  # disable the optimizations
//! ```

use std::io::Read;
use std::process::ExitCode;
use typeclasses::{run_checked, Budget, LintConfig, LintLevel, Options, Outcome};

const USAGE: &str = "expected --small, --core, --no-prelude, --lint, --deny-lints, \
                     --stats, --no-memo, --no-share, \
                     or --lint-level=<rule>=<allow|warn|deny>";

fn main() -> ExitCode {
    let mut opts = Options::default();
    let mut dump_core = false;
    let mut lint = false;
    let mut stats = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--small" => opts.budget = Budget::small(),
            "--core" => dump_core = true,
            "--no-prelude" => opts.use_prelude = false,
            "--stats" => stats = true,
            "--no-memo" => opts.memoize_resolution = false,
            "--no-share" => opts.share_dictionaries = false,
            "--lint" => lint = true,
            "--deny-lints" => {
                lint = true;
                opts.lint_levels = LintConfig::all(LintLevel::Deny);
            }
            _ if arg.starts_with("--lint-level=") => {
                lint = true;
                let spec = &arg["--lint-level=".len()..];
                let ok = match spec.split_once('=') {
                    Some((rule, level)) => opts.lint_levels.set_by_name(rule, level),
                    None => false,
                };
                if !ok {
                    eprintln!(
                        "error: bad lint level `{spec}` \
                         (expected <rule>=<allow|warn|deny>, e.g. unused-binding=allow)"
                    );
                    return ExitCode::from(2);
                }
            }
            _ if arg.starts_with('-') => {
                eprintln!("error: unknown option `{arg}` ({USAGE})");
                return ExitCode::from(2);
            }
            _ => path = Some(arg),
        }
    }

    let src = match &path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {p}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut s = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                eprintln!("error: cannot read stdin: {e}");
                return ExitCode::from(2);
            }
            s
        }
    };

    let check = if lint {
        typeclasses::lint_source(&src, &opts)
    } else {
        typeclasses::check_source(&src, &opts)
    };
    if stats {
        eprintln!("{}", check.stats.to_json());
    }
    let r = run_checked(check, &opts);
    if !r.check.diags.is_empty() {
        eprintln!("{}", r.check.render_diagnostics());
    }
    if dump_core {
        println!("{}", r.check.pretty_core());
    }
    match r.outcome {
        Outcome::Value(v) => {
            println!("{v}");
            ExitCode::SUCCESS
        }
        Outcome::NoMain => {
            eprintln!("note: program has no `main`; nothing to evaluate");
            ExitCode::SUCCESS
        }
        Outcome::CompileErrors => ExitCode::FAILURE,
        Outcome::Eval(e) => {
            eprintln!("runtime error: {e}");
            ExitCode::from(3)
        }
    }
}
