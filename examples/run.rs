//! Run a Mini-Haskell program through the whole pipeline:
//!
//! ```sh
//! cargo run --example run -- program.mh
//! echo 'main = member 3 (enumFromTo 1 5);' | cargo run --example run
//! cargo run --example run -- --core program.mh     # dump converted core
//! cargo run --example run -- --lint program.mh     # run the tc-lint pass
//! cargo run --example run -- --stats program.mh    # pipeline stats (JSON, stderr)
//! cargo run --example run -- --trace --profile program.mh  # timings + hot bindings
//! cargo run --example run -- --explain program.mh  # resolution derivation trees
//! cargo run --example run -- --explain L0008       # explain one diagnostic code
//! cargo run --example run -- --check-laws program.mh  # Eq/Ord class-law harness
//! cargo run --example run -- --metrics program.mh  # metric counters/histograms (stderr)
//! cargo run --example run -- --chrome-trace=t.json program.mh  # Perfetto-loadable trace
//! cargo run --example run -- serve --workers=4     # JSONL batch server on stdin/stdout
//! cargo run --example run -- serve --record --faults=seed=7;elaborate=panic%20
//! cargo run --example run -- serve --listen=127.0.0.1:7441 --access-log=access.jsonl
//! cargo run --example run -- top --connect=127.0.0.1:7441  # live telemetry dashboard
//! cargo run --example run -- json-check output.jsonl  # RFC 8259-check every line
//! cargo run --example run -- report dump.jsonl     # aggregate a dumped event log
//! cargo run --example run -- report dump.jsonl --chrome=t.json  # + Perfetto trace
//! ```
//!
//! Exit codes: 0 success, 1 compile errors, 2 usage/IO errors or
//! conflicting flags, 3 runtime error.

use std::io::{Read, Write};
use std::process::ExitCode;
use typeclasses::serve::ServeConfig;
use typeclasses::{run_checked, Budget, FaultPlan, LintConfig, LintLevel, Options, Outcome};

/// One command-line option: its name, argument shape (if any), and
/// help line. `USAGE` is generated from this table, so the two cannot
/// drift apart.
struct FlagSpec {
    name: &'static str,
    arg: Option<&'static str>,
    help: &'static str,
}

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--small",
        arg: None,
        help: "use the tiny evaluator budget",
    },
    FlagSpec {
        name: "--core",
        arg: None,
        help: "dump the converted core program",
    },
    FlagSpec {
        name: "--no-prelude",
        arg: None,
        help: "compile the program without the standard prelude",
    },
    FlagSpec {
        name: "--stats",
        arg: None,
        help: "print pipeline stats as one JSON object (stderr)",
    },
    FlagSpec {
        name: "--no-memo",
        arg: None,
        help: "disable resolution memoization (baseline mode)",
    },
    FlagSpec {
        name: "--no-share",
        arg: None,
        help: "disable dictionary sharing (baseline mode)",
    },
    FlagSpec {
        name: "--lint",
        arg: None,
        help: "run the tc-lint pass (findings warn)",
    },
    FlagSpec {
        name: "--deny-lints",
        arg: None,
        help: "run tc-lint with every rule escalated to deny",
    },
    FlagSpec {
        name: "--lint-level",
        arg: Some("<rule>=<allow|warn|deny>"),
        help: "set one lint or coherence rule's level (lint rules imply --lint)",
    },
    FlagSpec {
        name: "--check-laws",
        arg: None,
        help: "run the class-law harness over Eq/Ord instances (violations warn)",
    },
    FlagSpec {
        name: "--law-budget",
        arg: Some("<fuel>"),
        help: "evaluator fuel per generated law program (implies --check-laws)",
    },
    FlagSpec {
        name: "--time",
        arg: None,
        help: "print the per-stage timing table (stderr)",
    },
    FlagSpec {
        name: "--trace",
        arg: None,
        help: "print per-stage timings and pipeline counters (stderr)",
    },
    FlagSpec {
        name: "--explain",
        arg: None,
        help: "print instance-resolution derivation trees (stdout); with a \
               diagnostic <CODE> argument, explain that code and exit",
    },
    FlagSpec {
        name: "--profile",
        arg: None,
        help: "print the evaluator's hot-bindings table (stderr)",
    },
    FlagSpec {
        name: "--trace-json",
        arg: Some("<file>"),
        help: "write the full run trace as JSON to <file>",
    },
    FlagSpec {
        name: "--metrics",
        arg: None,
        help: "collect metrics and print the sorted metric table (stderr)",
    },
    FlagSpec {
        name: "--no-metrics",
        arg: None,
        help: "disable metrics collection (baseline mode)",
    },
    FlagSpec {
        name: "--chrome-trace",
        arg: Some("<file>"),
        help: "write a Chrome trace-event JSON (Perfetto-loadable) to <file>",
    },
];

/// Flag pairs that contradict each other (exit code 2).
const CONFLICTS: &[(&str, &str, &str)] = &[
    (
        "--no-memo",
        "--explain",
        "explain traces report memo-hit provenance, which requires the memo table",
    ),
    (
        "--no-metrics",
        "--metrics",
        "the metric table requires metrics collection",
    ),
];

/// Flags understood by the `serve` subcommand (in addition to the
/// pipeline baseline flags `--small`, `--no-prelude`, `--no-memo`,
/// and `--no-share`, which set the base options for every request).
const SERVE_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--workers",
        arg: Some("<n>"),
        help: "worker threads (default: cores, capped at 4)",
    },
    FlagSpec {
        name: "--queue",
        arg: Some("<n>"),
        help: "admission queue capacity; a full queue sheds (default 64)",
    },
    FlagSpec {
        name: "--deadline-ms",
        arg: Some("<ms>"),
        help: "default per-request deadline (requests may override)",
    },
    FlagSpec {
        name: "--faults",
        arg: Some("<spec>"),
        help: "deterministic fault injection, e.g. seed=42;elaborate=panic%30",
    },
    FlagSpec {
        name: "--record",
        arg: None,
        help: "enable the flight recorder (tail-sampled traces; drain with {\"cmd\":\"dump\"})",
    },
    FlagSpec {
        name: "--record-capacity",
        arg: Some("<n>"),
        help: "per-worker event ring capacity (implies --record; default 4096)",
    },
    FlagSpec {
        name: "--latency-threshold-us",
        arg: Some("<us>"),
        help: "retain any request slower than this (implies --record)",
    },
    FlagSpec {
        name: "--sample-every",
        arg: Some("<n>"),
        help: "head-sample every Nth request's trace (implies --record; 0 = off)",
    },
    FlagSpec {
        name: "--max-retained",
        arg: Some("<n>"),
        help: "retained-trace store cap; overflow counts as dropped (default 256)",
    },
    FlagSpec {
        name: "--listen",
        arg: Some("<host:port>"),
        help: "serve the same protocol over TCP instead of stdin (port 0 picks a free port)",
    },
    FlagSpec {
        name: "--port-file",
        arg: Some("<file>"),
        help: "with --listen, write the bound address to <file> once listening",
    },
    FlagSpec {
        name: "--access-log",
        arg: Some("<file|->"),
        help: "append one JSONL access record per request (`-` logs to stderr)",
    },
];

/// Flags understood by the `top` subcommand.
const TOP_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--connect",
        arg: Some("<host:port>"),
        help: "address of a `serve --listen` server (required)",
    },
    FlagSpec {
        name: "--interval-ms",
        arg: Some("<ms>"),
        help: "watch subscription interval (default 1000)",
    },
    FlagSpec {
        name: "--frames",
        arg: Some("<n>"),
        help: "exit after <n> dashboard frames (default: run until the server closes)",
    },
    FlagSpec {
        name: "--plain",
        arg: None,
        help: "append frames instead of redrawing in place (no ANSI escapes)",
    },
];

/// Flags understood by the `report` subcommand.
const REPORT_FLAGS: &[FlagSpec] = &[FlagSpec {
    name: "--chrome",
    arg: Some("<file>"),
    help: "also write the traces as Chrome trace-event JSON (Perfetto-loadable)",
}];

fn usage() -> String {
    let mut out = String::from(
        "usage: run [options] [program.mh]   (reads stdin when no file is given)\n\
         \x20      run serve [serve options]   (JSONL requests on stdin, responses on stdout)\n\
         \x20      run top --connect=<host:port> [top options]   (live telemetry dashboard)\n\
         \x20      run json-check <file|->   (validate each line as RFC 8259 JSON)\n\
         \x20      run report <dump.jsonl> [report options]   (aggregate a dumped event log)\n\noptions:\n",
    );
    for f in FLAGS {
        let left = match f.arg {
            Some(a) => format!("{}={}", f.name, a),
            None => f.name.to_string(),
        };
        out.push_str(&format!("  {left:<36} {}\n", f.help));
    }
    out.push_str("\nserve options:\n");
    for f in SERVE_FLAGS {
        let left = match f.arg {
            Some(a) => format!("{}={}", f.name, a),
            None => f.name.to_string(),
        };
        out.push_str(&format!("  {left:<36} {}\n", f.help));
    }
    out.push_str("\ntop options:\n");
    for f in TOP_FLAGS {
        let left = match f.arg {
            Some(a) => format!("{}={}", f.name, a),
            None => f.name.to_string(),
        };
        out.push_str(&format!("  {left:<36} {}\n", f.help));
    }
    out.push_str("\nreport options:\n");
    for f in REPORT_FLAGS {
        let left = match f.arg {
            Some(a) => format!("{}={}", f.name, a),
            None => f.name.to_string(),
        };
        out.push_str(&format!("  {left:<36} {}\n", f.help));
    }
    out
}

/// Levenshtein distance, for did-you-mean suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The closest known flag name, if it is close enough to be a
/// plausible typo.
fn suggest(unknown: &str) -> Option<&'static str> {
    let name = unknown.split('=').next().unwrap_or(unknown);
    FLAGS
        .iter()
        .map(|f| (edit_distance(name, f.name), f.name))
        .min()
        .filter(|(d, _)| *d <= 3)
        .map(|(_, n)| n)
}

/// Write to stdout without panicking when the reader hung up (`head`,
/// a dead pipe): returns whether the caller should keep emitting.
/// Rust ignores `SIGPIPE`, so an unguarded `println!` would panic.
fn emit(text: &str) -> bool {
    let mut out = std::io::stdout().lock();
    out.write_all(text.as_bytes())
        .and_then(|()| out.flush())
        .is_ok()
}

/// Is `s` shaped like a diagnostic code (`E0420`, `L0008`, `S0442`, ...)?
fn looks_like_code(s: &str) -> bool {
    s.len() == 5
        && (s.starts_with('E') || s.starts_with('L') || s.starts_with('S'))
        && s[1..].chars().all(|c| c.is_ascii_digit())
}

/// Pipeline error codes that are not lint/coherence rules: stable
/// resolver and driver codes, with the same one-line style as
/// [`Rule::description`].
const ERROR_CODES: &[(&str, &str, &str)] = &[
    (
        "E0210",
        "empty-case",
        "a `case` expression has no alternatives; at least one `pattern -> \
         expression` arm is required",
    ),
    (
        "E0211",
        "bad-pattern",
        "a `case` pattern is malformed: patterns are a constructor applied \
         to variable binders (`Cons x xs`), a variable, or `_`",
    ),
    (
        "E0212",
        "bad-deriving",
        "a `deriving` clause is malformed or names an underivable class; \
         only `Eq` and `Ord` can be derived",
    ),
    (
        "E0317",
        "duplicate-data-type",
        "a `data` declaration redefines an existing data type (or a builtin \
         like `Bool`/`List`), or repeats a type parameter",
    ),
    (
        "E0318",
        "duplicate-constructor",
        "a data constructor name is already defined by an earlier `data` \
         declaration; constructor names share one global namespace",
    ),
    (
        "E0319",
        "unbound-type-variable",
        "a constructor field mentions a type variable that is not a \
         parameter of its `data` declaration",
    ),
    (
        "E0416",
        "pattern-arity",
        "a constructor pattern binds the wrong number of fields for its \
         constructor",
    ),
    (
        "E0420",
        "resolution-cycle",
        "instance resolution entered a cycle: a goal recurred as its own \
         subgoal while walking instance contexts",
    ),
    (
        "E0421",
        "resolution-budget",
        "instance resolution exceeded its depth/work budget before finding \
         a derivation",
    ),
    (
        "E0422",
        "unknown-class",
        "a constraint names a class that is not defined by the program or \
         the prelude",
    ),
    (
        "E0423",
        "resolution-cancelled",
        "instance resolution was cancelled cooperatively (request deadline \
         or client abort)",
    ),
    (
        "E0430",
        "compile-cancelled",
        "the pipeline hit its deadline and stopped at a stage boundary \
         before finishing compilation",
    ),
    (
        "S0440",
        "serve-internal",
        "a request panicked inside the pipeline; isolation answered \
         `error:\"internal\"` and (with the flight recorder on) retained the \
         trace, whose events name the failing stage",
    ),
    (
        "S0441",
        "serve-deadline",
        "a request exceeded its deadline (in the queue or mid-stage) and \
         answered `error:\"deadline\"`; the retained trace's `cancelled` \
         event names the stage where the deadline tripped",
    ),
    (
        "S0442",
        "serve-overloaded",
        "admission shed the request because the queue was full; the \
         `retry_after_ms` hint scales with the backlog each worker must \
         clear, and the retained trace carries a `shed` event",
    ),
    (
        "S0443",
        "serve-bad-request",
        "the request line was not a valid request object (malformed JSON, \
         missing `program`, or a bad field type); nothing was compiled",
    ),
    (
        "S0444",
        "serve-watch",
        "`{\"cmd\":\"watch\",\"interval_ms\":N}` streams one fleet-telemetry \
         delta line per interval over the socket transport (counters as \
         differences, per-class rps/p50/p99 from differenced histograms); \
         the stream ends when the connection closes, and the stdin \
         transport rejects it as a bad request because there is no \
         connection to stream to",
    ),
    (
        "S0445",
        "serve-health",
        "`{\"cmd\":\"health\"}` is an O(1) readiness/liveness probe — queue \
         depth vs capacity, worker liveness, shed rate over the last \
         window, retained-trace backlog — that bypasses admission and \
         stays out of `serve.requests`, so it answers even when the \
         admission queue is saturated",
    ),
    (
        "S0446",
        "serve-access-log",
        "`--access-log <file|->` appends one JSONL record per request on \
         the completion path (id, seq, outcome class, latency_us, trace \
         retention decision, worker), so every request leaves a greppable \
         record even when its flight-recorder trace is not retained",
    ),
    (
        "S0447",
        "serve-top",
        "`run top --connect=<host:port>` subscribes to a socket server via \
         `watch` and renders a self-refreshing terminal dashboard: qps, \
         per-class latency quantiles, queue occupancy, cache hit rate, and \
         shed/fault counters",
    ),
];

/// The codes-table entry for `code`: `(code, rule-name, default, text)`.
fn explain_entry(code: &str) -> Option<(String, String, &'static str, String)> {
    if let Some((c, n, d)) = ERROR_CODES.iter().find(|(c, _, _)| *c == code) {
        return Some(((*c).into(), (*n).into(), "error", (*d).into()));
    }
    if let Some(r) = typeclasses::lint::Rule::ALL
        .iter()
        .find(|r| r.code() == code)
    {
        return Some((
            r.code().into(),
            r.name().into(),
            "warn by default",
            r.description().into(),
        ));
    }
    if let Some(r) = typeclasses::coherence::Rule::ALL
        .iter()
        .copied()
        .find(|r| r.code() == code)
    {
        let default = match r.default_level() {
            LintLevel::Deny => "deny by default",
            LintLevel::Warn => "warn by default",
            LintLevel::Allow => "allow by default",
        };
        return Some((
            r.code().into(),
            r.name().into(),
            default,
            r.description().into(),
        ));
    }
    None
}

/// `--explain <CODE>`: print one codes-table entry and exit. Unknown
/// codes exit 2 with the full table so the caller can find the one
/// they meant.
fn explain_code_main(code: &str) -> ExitCode {
    match explain_entry(code) {
        Some((code, name, default, text)) => {
            let _ = emit(&format!("{code} ({name}, {default})\n  {text}\n"));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("error: unknown diagnostic code `{code}`; known codes:");
            for (c, n, _) in ERROR_CODES {
                eprintln!("  {c} ({n})");
            }
            for r in typeclasses::lint::Rule::ALL {
                eprintln!("  {} ({})", r.code(), r.name());
            }
            for r in typeclasses::coherence::Rule::ALL {
                eprintln!("  {} ({})", r.code(), r.name());
            }
            ExitCode::from(2)
        }
    }
}

/// Parse an unsigned flag value, exiting with usage (code 2) on junk.
fn parse_num(flag: &str, value: &str) -> Result<u64, ExitCode> {
    value.parse::<u64>().map_err(|_| {
        eprintln!("error: bad value for `{flag}`: `{value}` (expected a non-negative integer)");
        ExitCode::from(2)
    })
}

/// The `serve` subcommand: stream JSONL requests from stdin through a
/// bounded worker pool and answer each one on stdout. A one-line
/// session summary goes to stderr at EOF.
fn serve_main(args: &[String]) -> ExitCode {
    let mut cfg = ServeConfig::default();
    let mut listen: Option<String> = None;
    let mut port_file: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--small" => cfg.options.budget = Budget::small(),
            "--no-prelude" => cfg.options.use_prelude = false,
            "--no-memo" => cfg.options.memoize_resolution = false,
            "--no-share" => cfg.options.share_dictionaries = false,
            _ if arg.starts_with("--workers=") => {
                match parse_num("--workers", &arg["--workers=".len()..]) {
                    Ok(n) => cfg.workers = (n as usize).max(1),
                    Err(code) => return code,
                }
            }
            _ if arg.starts_with("--queue=") => {
                match parse_num("--queue", &arg["--queue=".len()..]) {
                    Ok(n) => cfg.queue_capacity = (n as usize).max(1),
                    Err(code) => return code,
                }
            }
            _ if arg.starts_with("--deadline-ms=") => {
                match parse_num("--deadline-ms", &arg["--deadline-ms=".len()..]) {
                    Ok(n) => cfg.default_deadline_ms = Some(n),
                    Err(code) => return code,
                }
            }
            _ if arg.starts_with("--faults=") => {
                match FaultPlan::parse(&arg["--faults=".len()..]) {
                    Ok(plan) => cfg.faults = Some(plan),
                    Err(e) => {
                        eprintln!("error: bad --faults spec: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--record" => cfg.recorder.enabled = true,
            _ if arg.starts_with("--record-capacity=") => {
                match parse_num("--record-capacity", &arg["--record-capacity=".len()..]) {
                    Ok(n) => {
                        cfg.recorder.enabled = true;
                        cfg.recorder.capacity = (n as usize).max(1);
                    }
                    Err(code) => return code,
                }
            }
            _ if arg.starts_with("--latency-threshold-us=") => {
                match parse_num(
                    "--latency-threshold-us",
                    &arg["--latency-threshold-us=".len()..],
                ) {
                    Ok(n) => {
                        cfg.recorder.enabled = true;
                        cfg.recorder.latency_threshold_us = n;
                    }
                    Err(code) => return code,
                }
            }
            _ if arg.starts_with("--sample-every=") => {
                match parse_num("--sample-every", &arg["--sample-every=".len()..]) {
                    Ok(n) => {
                        cfg.recorder.enabled = true;
                        cfg.recorder.sample_every = n;
                    }
                    Err(code) => return code,
                }
            }
            _ if arg.starts_with("--max-retained=") => {
                match parse_num("--max-retained", &arg["--max-retained=".len()..]) {
                    Ok(n) => cfg.recorder.max_retained = (n as usize).max(1),
                    Err(code) => return code,
                }
            }
            _ if arg.starts_with("--listen=") => {
                listen = Some(arg["--listen=".len()..].to_string());
            }
            _ if arg.starts_with("--port-file=") => {
                port_file = Some(arg["--port-file=".len()..].to_string());
            }
            _ if arg.starts_with("--access-log=") => {
                match typeclasses::serve::AccessLog::create(&arg["--access-log=".len()..]) {
                    Ok(log) => cfg.access_log = Some(log),
                    Err(e) => {
                        eprintln!("error: cannot open access log: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            _ => {
                eprintln!("error: unknown serve option `{arg}`");
                eprint!("{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let summary = if let Some(addr) = listen {
        // Socket transport: bind first (so port 0 resolves), announce,
        // then serve until the process is killed.
        let listener = match std::net::TcpListener::bind(&addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: cannot listen on {addr}: {e}");
                return ExitCode::from(2);
            }
        };
        let handle = match typeclasses::serve::serve_socket(listener, &cfg) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: cannot start socket server: {e}");
                return ExitCode::from(2);
            }
        };
        let bound = handle.addr();
        if let Some(p) = &port_file {
            if let Err(e) = std::fs::write(p, format!("{bound}\n")) {
                eprintln!("error: cannot write {p}: {e}");
                return ExitCode::from(2);
            }
        }
        eprintln!("serve: listening on {bound} (health: {{\"cmd\":\"health\"}}; live view: run top --connect={bound})");
        handle.wait()
    } else {
        if port_file.is_some() {
            eprintln!("error: --port-file only makes sense with --listen");
            return ExitCode::from(2);
        }
        let stdin = std::io::stdin().lock();
        let stdout = std::io::stdout();
        typeclasses::serve::serve(stdin, stdout, &cfg)
    };
    eprintln!(
        "serve: {} requests ({} ok, {} internal, {} deadline, {} shed, {} bad), {} responses",
        summary.lines,
        summary.ok(),
        summary.internal(),
        summary.deadline(),
        summary.shed,
        summary.bad_requests,
        summary.responses,
    );
    if cfg.recorder.enabled {
        eprintln!(
            "serve: flight recorder retained {} traces ({} dropped, {} still undumped)",
            summary.traces_retained(),
            summary.traces_dropped(),
            summary.retained.len(),
        );
    }
    if summary.write_errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Render one `watch` tick as a dashboard frame: a header line, a
/// one-line gauge row, and the per-outcome-class rate table.
fn render_top_frame(addr: &str, v: &typeclasses::trace::json::Value) -> String {
    let num = |k: &str| v.get(k).and_then(|n| n.as_u64()).unwrap_or(0);
    let mut out = format!(
        "tc top — {addr} · tick {} · window {} ms · uptime {:.1}s\n",
        num("tick"),
        num("window_ms"),
        num("uptime_ms") as f64 / 1000.0,
    );
    let sub = |obj: &str, k: &str| {
        v.get(obj)
            .and_then(|o| o.get(k))
            .and_then(|n| n.as_u64())
            .unwrap_or(0)
    };
    let hit_rate = v
        .get("cache")
        .and_then(|c| c.get("hit_rate_pct"))
        .and_then(|n| n.as_f64())
        .unwrap_or(0.0);
    out.push_str(&format!(
        "qps {:.2} · queue {}/{} · connections {} · shed {} · faults {} · \
         cache {hit_rate:.1}% ({} hit / {} miss)\n\n",
        v.get("qps").and_then(|n| n.as_f64()).unwrap_or(0.0),
        sub("queue", "depth"),
        sub("queue", "capacity"),
        num("active_connections"),
        num("shed"),
        num("faults"),
        sub("cache", "hits"),
        sub("cache", "misses"),
    ));
    out.push_str(&format!(
        "  {:<12} {:>8} {:>10} {:>12} {:>12}\n",
        "class", "count", "rps", "p50_us", "p99_us"
    ));
    for class in ["ok", "internal", "deadline", "overloaded"] {
        let Some(c) = v.get("classes").and_then(|cs| cs.get(class)) else {
            continue;
        };
        let quantile = |k: &str| {
            c.get(k)
                .and_then(|n| n.as_f64())
                .map_or_else(|| "-".to_string(), |x| format!("{x:.1}"))
        };
        out.push_str(&format!(
            "  {:<12} {:>8} {:>10.2} {:>12} {:>12}\n",
            class,
            c.get("count").and_then(|n| n.as_u64()).unwrap_or(0),
            c.get("rps").and_then(|n| n.as_f64()).unwrap_or(0.0),
            quantile("p50"),
            quantile("p99"),
        ));
    }
    out
}

/// The `top` subcommand: subscribe to a socket server's `watch`
/// stream and redraw a telemetry dashboard on every tick.
fn top_main(args: &[String]) -> ExitCode {
    use typeclasses::trace::json;
    let mut addr: Option<String> = None;
    let mut interval_ms = 1000u64;
    let mut frames = 0u64;
    let mut plain = false;
    for arg in args {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--plain" => plain = true,
            _ if arg.starts_with("--connect=") => {
                addr = Some(arg["--connect=".len()..].to_string());
            }
            _ if arg.starts_with("--interval-ms=") => {
                match parse_num("--interval-ms", &arg["--interval-ms=".len()..]) {
                    Ok(n) => interval_ms = n.max(10),
                    Err(code) => return code,
                }
            }
            _ if arg.starts_with("--frames=") => {
                match parse_num("--frames", &arg["--frames=".len()..]) {
                    Ok(n) => frames = n,
                    Err(code) => return code,
                }
            }
            _ => {
                eprintln!("error: unknown top option `{arg}`");
                eprint!("{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!(
            "error: top needs --connect=<host:port> (start a server with `run serve --listen=...`)"
        );
        return ExitCode::from(2);
    };
    let stream = match std::net::TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: cannot split the connection: {e}");
            return ExitCode::from(2);
        }
    };
    let sub = format!("{{\"id\":\"top\",\"cmd\":\"watch\",\"interval_ms\":{interval_ms}}}\n");
    if writer
        .write_all(sub.as_bytes())
        .and_then(|()| writer.flush())
        .is_err()
    {
        eprintln!("error: cannot send the watch subscription to {addr}");
        return ExitCode::FAILURE;
    }

    use std::io::BufRead;
    let reader = std::io::BufReader::new(stream);
    let mut shown = 0u64;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(v) = json::parse(line) else { continue };
        if v.get("status").and_then(|s| s.as_str()) == Some("error") {
            eprintln!(
                "error: server rejected the subscription: {}",
                v.get("detail").and_then(|d| d.as_str()).unwrap_or("?")
            );
            return ExitCode::from(2);
        }
        if v.get("tick").is_none() {
            continue; // the subscription ack
        }
        shown += 1;
        if !plain && !emit("\x1b[2J\x1b[H") {
            return ExitCode::SUCCESS;
        }
        if !emit(&render_top_frame(&addr, &v)) {
            return ExitCode::SUCCESS;
        }
        if frames > 0 && shown >= frames {
            break;
        }
    }
    if shown == 0 {
        eprintln!("error: {addr} closed the stream before the first tick");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The `json-check` subcommand: validate every nonempty line of a
/// file (or stdin, with `-`) against the strict RFC 8259 checker.
/// Exit 0 only when every line passes.
fn json_check_main(args: &[String]) -> ExitCode {
    use typeclasses::trace::json;
    let [path] = args else {
        eprintln!("error: json-check takes exactly one file (or `-` for stdin)");
        return ExitCode::from(2);
    };
    let text = if path == "-" {
        let mut s = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut s) {
            eprintln!("error: cannot read stdin: {e}");
            return ExitCode::from(2);
        }
        s
    } else {
        match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        }
    };
    let mut checked = 0u64;
    let mut bad = 0u64;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        checked += 1;
        if let Err(e) = json::check(line) {
            bad += 1;
            eprintln!("{path}:{}: {e}", i + 1);
        }
    }
    if bad > 0 {
        eprintln!("json-check: {bad} of {checked} line(s) failed");
        return ExitCode::FAILURE;
    }
    let _ = emit(&format!("json-check: {checked} line(s) ok\n"));
    ExitCode::SUCCESS
}

/// One trace pulled back out of a dump file.
struct ReportTrace {
    trace_id: u64,
    outcome: String,
    reason: String,
    latency_us: u64,
    events: Vec<typeclasses::Event>,
}

/// The [`typeclasses::Stage`] index for a stage name in a dumped
/// event (0 when unrecognized — a malformed line, not a crash).
fn stage_index(name: &str) -> u64 {
    typeclasses::Stage::ALL
        .iter()
        .position(|s| s.name() == name)
        .unwrap_or(0) as u64
}

/// Rebuild one in-memory [`typeclasses::Event`] from its dumped JSON
/// object, inverting the self-describing field names back into the
/// static `arg0`/`arg1` encoding.
fn event_from_json(
    trace_id: u64,
    v: &typeclasses::trace::json::Value,
) -> Option<typeclasses::Event> {
    use typeclasses::EventKind;
    let ts_ns = v.get("ts_ns")?.as_u64()?;
    let kind = v.get("kind")?.as_str()?.to_string();
    let num = |k: &str| v.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
    let txt = |k: &str| v.get(k).and_then(|x| x.as_str()).unwrap_or("").to_string();
    let (kind, arg0, arg1) = match kind.as_str() {
        "request-start" => (EventKind::RequestStart, num("seq"), 0),
        "request-end" => (
            EventKind::RequestEnd,
            outcome_code(&txt("outcome")),
            num("latency_us"),
        ),
        "stage-start" => (EventKind::StageStart, stage_index(&txt("stage")), 0),
        "stage-end" => (
            EventKind::StageEnd,
            stage_index(&txt("stage")),
            num("diags"),
        ),
        "goal" => (
            EventKind::Goal,
            num("depth"),
            match txt("memo").as_str() {
                "miss" => 0,
                "hit" => 1,
                _ => 2,
            },
        ),
        "cache-evict" => (EventKind::CacheEvict, num("evicted"), 0),
        "eval-checkpoint" => (EventKind::EvalCheckpoint, num("fuel_used"), num("depth")),
        "cancelled" => (EventKind::Cancelled, stage_index(&txt("stage")), 0),
        "fault-injected" => (
            EventKind::FaultInjected,
            stage_index(&txt("stage")),
            match txt("action").as_str() {
                "panic" => 0,
                "delay" => 1,
                _ => 2,
            },
        ),
        "shed" => (EventKind::Shed, num("queue_depth"), num("retry_after_ms")),
        _ => return None,
    };
    Some(typeclasses::Event {
        trace_id,
        ts_ns,
        kind,
        arg0,
        arg1,
    })
}

/// The outcome-class code for a dumped outcome name.
fn outcome_code(name: &str) -> u64 {
    use typeclasses::trace::events as ev;
    match name {
        "internal" => ev::OUTCOME_INTERNAL,
        "deadline" => ev::OUTCOME_DEADLINE,
        "overloaded" => ev::OUTCOME_OVERLOADED,
        "bad-request" => ev::OUTCOME_BAD_REQUEST,
        _ => ev::OUTCOME_OK,
    }
}

/// Exact nearest-rank quantile over a sorted sample.
fn pct(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The `report` subcommand: aggregate a dumped event-log file (the
/// serve session's output, or just its `dump` response lines) into a
/// latency / error / cache-behavior report, optionally also writing
/// the traces as a Chrome trace-event document.
fn report_main(args: &[String]) -> ExitCode {
    use typeclasses::trace::events::{chrome_spans, traces_chrome_json};
    use typeclasses::trace::json;
    use typeclasses::EventKind;

    let mut path: Option<String> = None;
    let mut chrome_path: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with("--chrome=") => {
                chrome_path = Some(arg["--chrome=".len()..].to_string());
            }
            _ if arg.starts_with('-') => {
                eprintln!("error: unknown report option `{arg}`");
                eprint!("{}", usage());
                return ExitCode::from(2);
            }
            _ => {
                if path.is_some() {
                    eprintln!("error: report takes exactly one dump file");
                    return ExitCode::from(2);
                }
                path = Some(arg.clone());
            }
        }
    }
    let Some(path) = path else {
        eprintln!("error: report needs a dump file (JSONL from a `serve --record` session)");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut traces: Vec<ReportTrace> = Vec::new();
    let mut dump_lines = 0u64;
    let mut other_lines = 0u64;
    let mut dropped = 0u64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(v) = json::parse(line) else {
            other_lines += 1;
            continue;
        };
        let objs: Vec<&json::Value> = if let Some(arr) = v.get("traces").and_then(|t| t.as_array())
        {
            // A `dump` response line: every retained trace at once.
            dump_lines += 1;
            dropped += v.get("dropped").and_then(|n| n.as_u64()).unwrap_or(0);
            arr.iter().collect()
        } else if v.get("trace_id").is_some() && v.get("events").is_some() {
            // A bare trace object (one per line).
            vec![&v]
        } else {
            other_lines += 1;
            continue;
        };
        for t in objs {
            let Some(trace_id) = t.get("trace_id").and_then(|n| n.as_u64()) else {
                continue;
            };
            let events = t
                .get("events")
                .and_then(|e| e.as_array())
                .map(|evs| {
                    evs.iter()
                        .filter_map(|e| event_from_json(trace_id, e))
                        .collect()
                })
                .unwrap_or_default();
            traces.push(ReportTrace {
                trace_id,
                outcome: t
                    .get("outcome")
                    .and_then(|s| s.as_str())
                    .unwrap_or("ok")
                    .to_string(),
                reason: t
                    .get("reason")
                    .and_then(|s| s.as_str())
                    .unwrap_or("?")
                    .to_string(),
                latency_us: t.get("latency_us").and_then(|n| n.as_u64()).unwrap_or(0),
                events,
            });
        }
    }
    if traces.is_empty() && dump_lines == 0 {
        eprintln!("error: {path} contains no dump responses or trace objects");
        return ExitCode::from(2);
    }
    traces.sort_by_key(|t| t.trace_id);

    use std::collections::BTreeMap;
    let mut report = format!(
        "flight report: {path}\n  {} trace(s) from {} dump line(s) ({} dropped at the server, {} other line(s) ignored)\n",
        traces.len(),
        dump_lines,
        dropped,
        other_lines,
    );

    // Latency per outcome class, exact quantiles over the retained
    // sample (the server's `stats` reports the streaming-histogram
    // view of the same distribution).
    let mut by_outcome: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    let mut by_reason: BTreeMap<&str, u64> = BTreeMap::new();
    for t in &traces {
        by_outcome.entry(&t.outcome).or_default().push(t.latency_us);
        *by_reason.entry(&t.reason).or_default() += 1;
    }
    report.push_str("\nlatency_us by outcome:\n");
    report.push_str(&format!(
        "  {:<12} {:>6} {:>8} {:>8} {:>8} {:>8}\n",
        "outcome", "count", "p50", "p90", "p99", "max"
    ));
    for (outcome, mut lats) in by_outcome {
        lats.sort_unstable();
        report.push_str(&format!(
            "  {:<12} {:>6} {:>8} {:>8} {:>8} {:>8}\n",
            outcome,
            lats.len(),
            pct(&lats, 0.5),
            pct(&lats, 0.9),
            pct(&lats, 0.99),
            lats.last().copied().unwrap_or(0),
        ));
    }
    report.push_str("\nretention reasons:\n");
    for (reason, n) in by_reason {
        report.push_str(&format!("  {reason:<12} {n:>6}\n"));
    }

    // Stage behavior: completed spans with mean duration, plus the
    // stages that never finished (panics, deadlines).
    let mut stage_spans: BTreeMap<String, (u64, u64)> = BTreeMap::new(); // (count, total_ns)
    let mut unfinished: BTreeMap<String, u64> = BTreeMap::new();
    let mut goals = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut evictions = 0u64;
    let mut evicted_entries = 0u64;
    let mut faults: BTreeMap<&str, u64> = BTreeMap::new();
    let mut cancelled: BTreeMap<String, u64> = BTreeMap::new();
    let mut sheds = 0u64;
    for t in &traces {
        for s in chrome_spans(&t.events) {
            if s.cat != "stage" {
                continue;
            }
            match s.name.strip_suffix(" (unfinished)") {
                Some(stage) => *unfinished.entry(stage.to_string()).or_default() += 1,
                None => {
                    let e = stage_spans.entry(s.name.clone()).or_default();
                    e.0 += 1;
                    e.1 += s.duration_ns;
                }
            }
        }
        for e in &t.events {
            match e.kind {
                EventKind::Goal => {
                    goals += 1;
                    match e.arg1 {
                        0 => misses += 1,
                        1 => hits += 1,
                        _ => {}
                    }
                }
                EventKind::CacheEvict => {
                    evictions += 1;
                    evicted_entries += e.arg0;
                }
                EventKind::FaultInjected => {
                    let action = match e.arg1 {
                        0 => "panic",
                        1 => "delay",
                        _ => "budget",
                    };
                    *faults.entry(action).or_default() += 1;
                }
                EventKind::Cancelled => {
                    let stage = typeclasses::Stage::ALL
                        .get(e.arg0 as usize)
                        .map_or("?", |s| s.name());
                    *cancelled.entry(stage.to_string()).or_default() += 1;
                }
                EventKind::Shed => sheds += 1,
                _ => {}
            }
        }
    }
    report.push_str("\nstages (completed spans):\n");
    report.push_str(&format!(
        "  {:<12} {:>6} {:>10}\n",
        "stage", "spans", "mean_us"
    ));
    for (stage, (count, total_ns)) in &stage_spans {
        report.push_str(&format!(
            "  {:<12} {:>6} {:>10.1}\n",
            stage,
            count,
            *total_ns as f64 / 1e3 / (*count).max(1) as f64,
        ));
    }
    if !unfinished.is_empty() {
        report.push_str("stages that never finished (panic/deadline):\n");
        for (stage, n) in &unfinished {
            report.push_str(&format!("  {stage:<12} {n:>6}\n"));
        }
    }
    report.push_str(&format!(
        "\ncache: {goals} goal(s) ({hits} memo hits, {misses} misses), \
         {evictions} eviction event(s) dropping {evicted_entries} entr(ies)\n"
    ));
    if !faults.is_empty() {
        let parts: Vec<String> = faults.iter().map(|(a, n)| format!("{a}={n}")).collect();
        report.push_str(&format!("faults injected: {}\n", parts.join(", ")));
    }
    if !cancelled.is_empty() {
        let parts: Vec<String> = cancelled.iter().map(|(s, n)| format!("{s}={n}")).collect();
        report.push_str(&format!(
            "deadline cancellations by stage: {}\n",
            parts.join(", ")
        ));
    }
    if sheds > 0 {
        report.push_str(&format!("shed at admission: {sheds}\n"));
    }
    if !emit(&report) {
        return ExitCode::SUCCESS;
    }

    if let Some(p) = &chrome_path {
        let spans: Vec<(u64, Vec<typeclasses::SpanEvent>)> = traces
            .iter()
            .map(|t| (t.trace_id, chrome_spans(&t.events)))
            .collect();
        if let Err(e) = std::fs::write(p, traces_chrome_json(&spans)) {
            eprintln!("error: cannot write {p}: {e}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        return serve_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("report") {
        return report_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("top") {
        return top_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("json-check") {
        return json_check_main(&args[1..]);
    }

    // `--explain <CODE>` / `--explain=<CODE>` is a lookup, not a run:
    // answer it before touching any input. A bare `--explain` (no code
    // following) keeps its derivation-trace meaning below.
    if let Some(code) = args.iter().enumerate().find_map(|(i, a)| {
        a.strip_prefix("--explain=")
            .map(str::to_string)
            .or_else(|| {
                (a == "--explain")
                    .then(|| args.get(i + 1))
                    .flatten()
                    .filter(|c| looks_like_code(c))
                    .cloned()
            })
    }) {
        return explain_code_main(&code);
    }

    let mut opts = Options::default();
    let mut dump_core = false;
    let mut lint = false;
    let mut stats = false;
    let mut explain = false;
    let mut profile = false;
    let mut show_timing = false;
    let mut metrics = false;
    let mut trace_json_path: Option<String> = None;
    let mut chrome_trace_path: Option<String> = None;
    let mut path: Option<String> = None;
    let mut seen: Vec<&'static str> = Vec::new();

    for arg in args {
        if let Some(f) = FLAGS
            .iter()
            .find(|f| arg == f.name || arg.starts_with(&format!("{}=", f.name)))
        {
            seen.push(f.name);
        }
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--small" => opts.budget = Budget::small(),
            "--core" => dump_core = true,
            "--no-prelude" => opts.use_prelude = false,
            "--stats" => stats = true,
            "--no-memo" => opts.memoize_resolution = false,
            "--no-share" => opts.share_dictionaries = false,
            "--lint" => lint = true,
            "--deny-lints" => {
                lint = true;
                opts.lint_levels = LintConfig::all(LintLevel::Deny);
            }
            "--time" | "--trace" => {
                opts.trace_timing = true;
                show_timing = true;
            }
            "--explain" => {
                opts.trace_resolution = true;
                explain = true;
            }
            "--profile" => {
                opts.profile_eval = true;
                profile = true;
            }
            "--check-laws" => opts.check_laws = true,
            "--metrics" => {
                opts.collect_metrics = true;
                metrics = true;
            }
            "--no-metrics" => opts.collect_metrics = false,
            _ if arg.starts_with("--chrome-trace=") => {
                opts.trace_timing = true;
                opts.trace_goal_spans = true;
                chrome_trace_path = Some(arg["--chrome-trace=".len()..].to_string());
            }
            _ if arg.starts_with("--trace-json=") => {
                opts.trace_timing = true;
                trace_json_path = Some(arg["--trace-json=".len()..].to_string());
            }
            _ if arg.starts_with("--law-budget=") => {
                match parse_num("--law-budget", &arg["--law-budget=".len()..]) {
                    Ok(n) => {
                        opts.check_laws = true;
                        opts.law_budget.fuel = n.max(1);
                    }
                    Err(code) => return code,
                }
            }
            _ if arg.starts_with("--lint-level=") => {
                let spec = &arg["--lint-level=".len()..];
                // Lint rules switch the lint pass on; coherence rules
                // always run, so their overrides only adjust levels.
                let ok = match spec.split_once('=') {
                    Some((rule, level)) => {
                        if opts.lint_levels.set_by_name(rule, level) {
                            lint = true;
                            true
                        } else {
                            opts.coherence_levels.set_by_name(rule, level)
                        }
                    }
                    None => false,
                };
                if !ok {
                    eprintln!(
                        "error: bad lint level `{spec}` \
                         (expected <rule>=<allow|warn|deny>, e.g. unused-binding=allow \
                         or overlapping-instances=warn)"
                    );
                    return ExitCode::from(2);
                }
            }
            _ if arg.starts_with('-') => {
                match suggest(&arg) {
                    Some(s) => eprintln!("error: unknown option `{arg}` (did you mean `{s}`?)"),
                    None => eprintln!("error: unknown option `{arg}`"),
                }
                eprint!("{}", usage());
                return ExitCode::from(2);
            }
            _ => path = Some(arg),
        }
    }

    for (a, b, why) in CONFLICTS {
        if seen.contains(a) && seen.contains(b) {
            eprintln!("error: `{a}` conflicts with `{b}`: {why}");
            return ExitCode::from(2);
        }
    }

    let src = match &path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {p}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut s = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                eprintln!("error: cannot read stdin: {e}");
                return ExitCode::from(2);
            }
            s
        }
    };

    let check = if lint {
        typeclasses::lint_source(&src, &opts)
    } else {
        typeclasses::check_source(&src, &opts)
    };
    let r = run_checked(check, &opts);

    if !r.check.diags.is_empty() {
        eprintln!("{}", r.check.render_diagnostics());
    }
    if dump_core && !emit(&format!("{}\n", r.check.pretty_core())) {
        return ExitCode::SUCCESS;
    }
    if explain {
        let shown = match r.check.render_explain() {
            Some(t) if !t.is_empty() => emit(&t),
            _ => emit("(no resolution goals)\n"),
        };
        if !shown {
            return ExitCode::SUCCESS;
        }
    }
    // Stats are printed after the run so evaluator counters (fuel,
    // allocations) are included when the program was evaluated.
    if stats {
        eprintln!("{}", r.check.stats.to_json());
        let rs = &r.check.stats.resolve;
        eprintln!(
            "resolution: {} hits / {} misses ({:.1}% hit rate)",
            rs.table_hits,
            rs.table_misses,
            rs.hit_rate() * 100.0
        );
    }
    if metrics {
        eprint!("{}", r.check.stats.metrics.render_table());
    }
    if show_timing {
        eprint!("{}", r.check.telemetry.render_table());
    }
    if profile {
        match &r.profile {
            Some(p) => eprint!("{}", p.render_table()),
            None => eprintln!("note: nothing was evaluated, so there is no profile"),
        }
    }
    if let Some(p) = &trace_json_path {
        if let Err(e) = std::fs::write(p, r.trace_json()) {
            eprintln!("error: cannot write {p}: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(p) = &chrome_trace_path {
        if let Err(e) = std::fs::write(p, r.check.chrome_trace_json()) {
            eprintln!("error: cannot write {p}: {e}");
            return ExitCode::from(2);
        }
    }

    match r.outcome {
        Outcome::Value(v) => {
            // A closed pipe here is the reader's choice, not a failure.
            let _ = emit(&format!("{v}\n"));
            ExitCode::SUCCESS
        }
        Outcome::NoMain => {
            eprintln!("note: program has no `main`; nothing to evaluate");
            ExitCode::SUCCESS
        }
        Outcome::CompileErrors => ExitCode::FAILURE,
        Outcome::Eval(e) => {
            eprintln!("runtime error: {e}");
            ExitCode::from(3)
        }
    }
}
